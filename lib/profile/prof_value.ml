(* Value-prediction profiler: load sites that always observed one
   constant value, and branch taken/not-taken counts (branch bias is
   the degenerate control-flow form of value prediction).  Flat
   site-indexed arrays; one array probe per load or branch. *)

open Privateer_interp

let name = "value"

type t = {
  mutable const : Profile_types.const_status option array; (* load site *)
  mutable taken : int array; (* branch id -> taken count *)
  mutable not_taken : int array;
}

type Frontend.state += State of t

let ensure_const p site =
  let n = Array.length p.const in
  if site >= n then begin
    let a = Array.make (max (2 * n) (site + 1)) None in
    Array.blit p.const 0 a 0 n;
    p.const <- a
  end

let ensure_branch p id =
  let n = Array.length p.taken in
  if id >= n then begin
    let n' = max (2 * n) (id + 1) in
    let t = Array.make n' 0 and f = Array.make n' 0 in
    Array.blit p.taken 0 t 0 n;
    Array.blit p.not_taken 0 f 0 n;
    p.taken <- t;
    p.not_taken <- f
  end

let on_load p site _addr _size _id value =
  ensure_const p site;
  match p.const.(site) with
  | None -> p.const.(site) <- Some (Profile_types.Const value)
  | Some (Profile_types.Const v) ->
    if not (Value.equal v value) then p.const.(site) <- Some Profile_types.Varying
  | Some Profile_types.Varying -> ()

let on_branch p id taken =
  ensure_branch p id;
  if taken = 1 then p.taken.(id) <- p.taken.(id) + 1
  else p.not_taken.(id) <- p.not_taken.(id) + 1

let const_load_value p site =
  if site >= 0 && site < Array.length p.const then
    match p.const.(site) with
    | Some (Profile_types.Const v) -> Some v
    | Some Profile_types.Varying | None -> None
  else None

let branch_counts p id =
  if id >= 0 && id < Array.length p.taken then (p.taken.(id), p.not_taken.(id))
  else (0, 0)

let branch_bias p id =
  match branch_counts p id with
  | t, 0 when t > 0 -> Some true
  | 0, f when f > 0 -> Some false
  | _ -> None

let () =
  Frontend.register
    { Frontend.d_name = name;
      d_doc = "value prediction: constant loads and branch bias";
      d_needs_objects = false;
      d_needs_ctx = false;
      d_kinds = Event.(mask_of [ load; branch ]);
      d_create =
        (fun ~ctx:_ ->
          let p =
            { const = Array.make 256 None; taken = Array.make 256 0;
              not_taken = Array.make 256 0 }
          in
          { (Frontend.null_consumer (State p)) with
            c_load = on_load p; c_branch = on_branch p }) }
