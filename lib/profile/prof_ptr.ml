(* Pointer-to-object profiler: for every load/store site, the set of
   object name ids the site was observed to touch, plus the names
   minted by each allocation site.  The only consumer that asks the
   frontend to resolve an object name per access
   ([d_needs_objects = true]).

   Site-indexed flat arrays with a last-id filter: the common case —
   a site touching the same object as on its previous access — is one
   array load and a compare. *)

module Iset = Set.Make (Int)

let name = "ptr"

type t = {
  mutable last : int array; (* site -> name id last added, min_int = none *)
  mutable sets : Iset.t array; (* site -> accessed name ids *)
  alloc_names : (int, Iset.t ref) Hashtbl.t; (* alloc site -> minted ids *)
}

type Frontend.state += State of t

let ensure p site =
  let n = Array.length p.last in
  if site >= n then begin
    let n' = max (2 * n) (site + 1) in
    let last = Array.make n' min_int in
    Array.blit p.last 0 last 0 n;
    let sets = Array.make n' Iset.empty in
    Array.blit p.sets 0 sets 0 n;
    p.last <- last;
    p.sets <- sets
  end

let access p site id =
  ensure p site;
  if p.last.(site) <> id then begin
    p.last.(site) <- id;
    p.sets.(site) <- Iset.add id p.sets.(site)
  end

let on_access p site _addr _size id = access p site id

let on_alloc p site _addr _size id =
  match Hashtbl.find_opt p.alloc_names site with
  | Some cell -> cell := Iset.add id !cell
  | None -> Hashtbl.replace p.alloc_names site (ref (Iset.singleton id))

let objects_at_site p site =
  if site >= 0 && site < Array.length p.sets then Iset.elements p.sets.(site)
  else []

let alloc_names p site =
  match Hashtbl.find_opt p.alloc_names site with
  | Some cell -> Iset.elements !cell
  | None -> []

let () =
  Frontend.register
    { Frontend.d_name = name;
      d_doc = "pointer-to-object: objects touched per access site";
      d_needs_objects = true;
      d_needs_ctx = false;
      d_kinds = Event.(mask_of [ load; store; alloc ]);
      d_create =
        (fun ~ctx:_ ->
          let p =
            { last = Array.make 256 min_int; sets = Array.make 256 Iset.empty;
              alloc_names = Hashtbl.create 16 }
          in
          { (Frontend.null_consumer (State p)) with
            c_load = (fun site _addr _size id _v -> access p site id);
            c_store = on_access p; c_alloc = on_alloc p }) }
