(* Object-lifetime profiler: which (object name, loop) pairs are
   short-lived — every instance allocated under the loop was freed in
   the same invocation and iteration it was born in.  Classification
   uses this to place such objects in the short-lived heap (paper
   section 4.1).

   Instances are keyed by exact base address: the allocator recycles
   freed storage at identical bases and never overlaps live ranges,
   so a replace-on-alloc table reproduces the reference's interval
   map bookkeeping.  Birth contexts are shared {!Loop_ctx.snapshot}
   arrays. *)

let name = "lifetime"

type t = {
  ctx : Loop_ctx.t;
  instances : (int, int * int array) Hashtbl.t; (* addr -> name id, birth *)
  sl_seen : (int * int, unit) Hashtbl.t; (* (name id, loop) *)
  sl_bad : (int * int, unit) Hashtbl.t;
  born_in : (int, (int, int) Hashtbl.t) Hashtbl.t; (* loop -> addr -> name *)
}

type Frontend.state += State of t

let mark_bad p id loop = Hashtbl.replace p.sl_bad (id, loop) ()

let on_alloc p _site addr _size id =
  Hashtbl.replace p.instances addr (id, (Loop_ctx.snapshot p.ctx).Loop_ctx.triples);
  Loop_ctx.iter_current p.ctx (fun l _inv _it ->
      Hashtbl.replace p.sl_seen (id, l) ();
      match Hashtbl.find_opt p.born_in l with
      | Some tbl -> Hashtbl.replace tbl addr id
      | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.replace p.born_in l tbl;
        Hashtbl.replace tbl addr id)

let on_free p addr _size id =
  if id >= 0 then begin
    match Hashtbl.find_opt p.instances addr with
    | Some (born_id, birth) ->
      Hashtbl.remove p.instances addr;
      (* Every loop active at birth must still be in the same
         invocation and iteration now ... *)
      let triples = Array.length birth / 3 in
      for j = 0 to triples - 1 do
        let l = birth.(3 * j) in
        let inv = birth.((3 * j) + 1) in
        let it = birth.((3 * j) + 2) in
        let cur = Loop_ctx.find_current p.ctx l in
        if not (cur >= 0 && Loop_ctx.inv_at p.ctx cur = inv
                && Loop_ctx.iter_at p.ctx cur = it)
        then mark_bad p born_id l;
        match Hashtbl.find_opt p.born_in l with
        | Some tbl -> Hashtbl.remove tbl addr
        | None -> ()
      done;
      (* ... and loops active now but not at birth saw the object
         cross into them from outside. *)
      Loop_ctx.iter_current p.ctx (fun l _inv _it ->
          if Loop_ctx.find_in_snapshot birth l < 0 then mark_bad p born_id l)
    | None ->
      (* Freed but never seen allocated under profiling (a global, or
         pre-existing storage): born before every active loop. *)
      Loop_ctx.iter_current p.ctx (fun l _inv _it -> mark_bad p id l)
  end

(* The frontend has already pushed/popped the context stack when these
   run; only the born-in bookkeeping is this consumer's. *)
let on_enter p loop _cycles =
  match Hashtbl.find_opt p.born_in loop with
  | Some tbl -> Hashtbl.reset tbl
  | None -> Hashtbl.replace p.born_in loop (Hashtbl.create 16)

let on_exit p loop _trips _cycles =
  (* Objects born in this invocation and still live are not
     short-lived with respect to this loop. *)
  match Hashtbl.find_opt p.born_in loop with
  | None -> ()
  | Some tbl ->
    Hashtbl.iter (fun _addr id -> mark_bad p id loop) tbl;
    Hashtbl.reset tbl

let is_short_lived p id loop =
  Hashtbl.mem p.sl_seen (id, loop) && not (Hashtbl.mem p.sl_bad (id, loop))

let () =
  Frontend.register
    { Frontend.d_name = name;
      d_doc = "object lifetime: per-loop short-lived allocation sites";
      d_needs_objects = false;
      d_needs_ctx = true;
      d_kinds = Event.(mask_of [ alloc; free; enter; exit' ]);
      d_create =
        (fun ~ctx ->
          let p =
            { ctx; instances = Hashtbl.create 64; sl_seen = Hashtbl.create 32;
              sl_bad = Hashtbl.create 32; born_in = Hashtbl.create 8 }
          in
          { (Frontend.null_consumer (State p)) with
            c_alloc = on_alloc p; c_free = on_free p; c_enter = on_enter p;
            c_exit = on_exit p }) }
