(* Flat event batches: the wire format between the shared profiling
   frontend and the per-profiler consumers.  One batch is a struct of
   arrays — a kind byte plus four int operands and a value slot per
   event — so producing an event is a handful of unchecked array
   writes and consuming one touches contiguous memory.

   Operand layout per kind:

     Load    a=site  b=addr   c=size   d=object name id   v=value read
     Store   a=site  b=addr   c=size   d=object name id
     Alloc   a=site  b=addr   c=size   d=object name id
     Free    b=addr  c=size   d=removed name id (-1 if unknown)
     Enter   a=loop  b=cycles at entry
     Iter    a=loop  b=iteration counter
     Exit    a=loop  b=trips  c=cycles at exit
     Branch  a=branch id      b=1 if taken else 0

   Name ids intern [Objname.t] in the frontend; id 0 is always
   [Objname.Unknown]. *)

let load = '\000'
let store = '\001'
let alloc = '\002'
let free = '\003'
let enter = '\004'
let iter = '\005'
let exit' = '\006'
let branch = '\007'

(* Kind masks: each consumer declares the kinds it consumes, and the
   frontend only generates events some enabled consumer wants. *)
let bit k = 1 lsl Char.code k
let mask_of ks = List.fold_left (fun m k -> m lor bit k) 0 ks

type t = {
  mutable n : int;
  kind : Bytes.t;
  a : int array;
  b : int array;
  c : int array;
  d : int array;
  v : Privateer_interp.Value.t array;
}

let dummy_value = Privateer_interp.Value.VInt 0

let create size =
  { n = 0; kind = Bytes.create size;
    a = Array.make size 0; b = Array.make size 0; c = Array.make size 0;
    d = Array.make size 0; v = Array.make size dummy_value }

let capacity t = Bytes.length t.kind
let is_full t = t.n >= capacity t

let clear t =
  (* Drop value pointers so a retired batch does not keep boxed floats
     alive across runs; ints and bytes can stay stale. *)
  Array.fill t.v 0 t.n dummy_value;
  t.n <- 0

let[@inline] push t k ~a ~b ~c ~d ~v =
  let i = t.n in
  Bytes.unsafe_set t.kind i k;
  Array.unsafe_set t.a i a;
  Array.unsafe_set t.b i b;
  Array.unsafe_set t.c i c;
  Array.unsafe_set t.d i d;
  Array.unsafe_set t.v i v;
  t.n <- i + 1

(* Value-less push: every kind but Load leaves the value slot alone
   (it is [dummy_value] from {!clear}), skipping the write barrier a
   boxed-array store would pay. *)
let[@inline] push_nv t k ~a ~b ~c ~d =
  let i = t.n in
  Bytes.unsafe_set t.kind i k;
  Array.unsafe_set t.a i a;
  Array.unsafe_set t.b i b;
  Array.unsafe_set t.c i c;
  Array.unsafe_set t.d i d;
  t.n <- i + 1
