module Workload = Privateer_workloads.Workload
module Workloads = Privateer_workloads.Workloads

type t = {
  src_kind : string;
  src_workload : Workload.t option;
  src_fresh : unit -> Privateer_ir.Ast.program;
}

let kinds = "workload:<name>, file:<path> or scenario:<spec>"

let lookup_workload name =
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "scenario" ->
    Scenario_gen.workload_of_spec
      (String.sub name (i + 1) (String.length name - i - 1))
  | _ -> Workloads.lookup name

let of_workload kind wl =
  { src_kind = kind; src_workload = Some wl;
    src_fresh = (fun () -> Workload.fresh_program wl) }

let parse ?(dir = ".") src =
  match String.index_opt src ':' with
  | None -> Error (Printf.sprintf "job source must be %s, got %S" kinds src)
  | Some i -> (
    let kind = String.sub src 0 i in
    let arg = String.sub src (i + 1) (String.length src - i - 1) in
    match kind with
    | "workload" -> Result.map (of_workload "workload") (Workloads.lookup arg)
    | "scenario" ->
      Result.map (of_workload "scenario") (Scenario_gen.workload_of_spec arg)
    | "file" ->
      let path = if Filename.is_relative arg then Filename.concat dir arg else arg in
      if not (Sys.file_exists path) then Error (Printf.sprintf "no such file %S" path)
      else
        let source = In_channel.with_open_text path In_channel.input_all in
        Ok
          { src_kind = "file"; src_workload = None;
            src_fresh = (fun () -> Privateer.Pipeline.parse source) }
    | k -> Error (Printf.sprintf "unknown job source kind %S (want %s)" k kinds))
