(* Seeded synthetic Cmini scenario generator (see the .mli and
   docs/SCENARIOS.md).

   Shape of every generated program: a read-only [data] table filled
   once, then [loops] independent hot loops.  Each hot loop writes a
   private [conf<l>] slot and [reuse] private [scratch<l>] slots, reads
   one of the slots it just wrote (intra-iteration flow: privatizable),
   allocates and frees a short-lived node, folds [data] into a local,
   updates 0..3 memory-reduction arrays (sum / xor / or — the
   associative-commutative ops the classifier recognizes; min/max are
   interpreter builtins, not recognized reductions, so they would
   declassify the loop) and a register reduction, and writes a private
   [out<l>] slot.

   Planted conflicts use a dedicated channel array [cfl<l>],
   initialized to a per-loop constant before the hot loops.  Every
   [m]-th iteration pair exercises it:

     if ((k + delta) %% m == offs) cfl[((k + delta) / m) %% CS] = C;
     if (k %% m == offs)           s = s + cfl[(k / m) %% CS];

   With [delta = 0] (the train input) writer and reader coincide in
   one iteration — an intra-iteration flow, so profiling classifies
   the channel privatizable.  With [delta = 1] (ref/alt) the writer
   moves to the previous iteration: a genuine cross-iteration flow.
   The runtime detects it when writer and reader share a worker
   (inline shadow: timestamp or old-write read) or share a checkpoint
   interval on different workers (phase-2 writer-index probe); a
   cross-worker flow that straddles an interval boundary is invisible
   to the per-interval index and the reader keeps its snapshot value.
   The write therefore stores the SAME constant the channel was
   initialized with — every read yields [C] on every path, so the
   committed output equals the sequential output at any worker count
   while the metadata-driven squashes still fire.  At workers = 1
   every planted pair lands on one machine and is detected inline,
   making the misspeculation count exactly [expected_misspecs].  Both
   branches execute on every input (delta only shifts the writer), so
   control speculation never prunes them and the planted rate is
   governed by [m] alone. *)

module Rng = Privateer_support.Rng
module Workload = Privateer_workloads.Workload
module Workloads = Privateer_workloads.Workloads

type knobs = {
  k_seed : int;
  k_loops : int;
  k_trip : int;
  k_heap : int;
  k_reuse : int;
  k_redux : float;
  k_misspec : float;
}

let default_knobs =
  { k_seed = 1; k_loops = 1; k_trip = 64; k_heap = 64; k_reuse = 4; k_redux = 0.5;
    k_misspec = 0.0 }

(* Fixed array geometry (documented in docs/SCENARIOS.md). *)
let conf_slots = 32
let out_slots = 256
let red_slots = 16
let data_slots = 128
let scenario_max_scale = 8

(* Conflict-channel width: ideally no slot is reused within one
   invocation (a machine that read a slot as live-in must not write it
   later in the same cohort, or the conservative write-after-read rule
   fires a spurious squash), so size the channel for the largest ref
   input [trip * scenario_max_scale], capped at 4096 slots.  Beyond
   the cap (n > 4096 * m) reuse is possible and the realized count may
   exceed the planted one; the output stays correct either way. *)
let max_cfl_slots = 4096

let cfl_slots ~trip ~m =
  min max_cfl_slots (max conf_slots (((trip * scenario_max_scale) + m - 1) / m) + 1)

(* Per-loop constant the channel holds on every path. *)
let cfl_base l = 640 + (17 * l)

let validate k =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if k.k_seed < 0 then err "seed must be >= 0, got %d" k.k_seed
  else if k.k_loops < 1 || k.k_loops > 8 then err "loops must be in 1..8, got %d" k.k_loops
  else if k.k_trip < 8 || k.k_trip > 65536 then
    err "trip must be in 8..65536, got %d" k.k_trip
  else if k.k_heap < 1 || k.k_heap > 65536 then
    err "heap must be in 1..65536, got %d" k.k_heap
  else if k.k_reuse < 1 || k.k_reuse > 64 then
    err "reuse must be in 1..64, got %d" k.k_reuse
  else if not (k.k_redux >= 0.0 && k.k_redux <= 1.0) then
    err "redux must be in [0, 1], got %g" k.k_redux
  else if not (k.k_misspec = 0.0 || (k.k_misspec >= 0.01 && k.k_misspec <= 0.2)) then
    err "misspec must be 0 or in [0.01, 0.2], got %g" k.k_misspec
  else Ok k

let spec_of_knobs k =
  Printf.sprintf "seed=%d,loops=%d,trip=%d,heap=%d,reuse=%d,redux=%.3f,misspec=%.3f"
    k.k_seed k.k_loops k.k_trip k.k_heap k.k_reuse k.k_redux k.k_misspec

let knobs_of_spec spec =
  let parse_field acc field =
    match acc with
    | Error _ as e -> e
    | Ok k -> (
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "bad scenario field %S (want key=value)" field)
      | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        let int_v f =
          match int_of_string_opt v with
          | Some n -> Ok (f n)
          | None -> Error (Printf.sprintf "scenario %s: expected an integer, got %S" key v)
        in
        let float_v f =
          match float_of_string_opt v with
          | Some x -> Ok (f x)
          | None -> Error (Printf.sprintf "scenario %s: expected a number, got %S" key v)
        in
        match key with
        | "seed" -> int_v (fun n -> { k with k_seed = n })
        | "loops" -> int_v (fun n -> { k with k_loops = n })
        | "trip" -> int_v (fun n -> { k with k_trip = n })
        | "heap" -> int_v (fun n -> { k with k_heap = n })
        | "reuse" -> int_v (fun n -> { k with k_reuse = n })
        | "redux" -> float_v (fun x -> { k with k_redux = x })
        | "misspec" -> float_v (fun x -> { k with k_misspec = x })
        | _ ->
          Error
            (Printf.sprintf
               "unknown scenario knob %S (seed|loops|trip|heap|reuse|redux|misspec)" key)))
  in
  let fields =
    String.split_on_char ',' (String.trim spec)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if fields = [] then Error "empty scenario spec"
  else
    match List.fold_left parse_field (Ok default_knobs) fields with
    | Error _ as e -> e
    | Ok k -> validate k

type expect = {
  x_private : string list;
  x_redux : string list;
  x_readonly : string list;
  x_hot_loops : int;
}

type t = {
  sc_knobs : knobs;
  sc_name : string;
  sc_source : string;
  sc_expect : expect;
  sc_conflict_period : int option;
  sc_conflict_offsets : int list;
  sc_workload : Workload.t;
}

(* Per-loop shape choices, all drawn from the seeded Rng. *)
type loop_shape = {
  l_mult : int;  (* value-mixing multiplier *)
  l_stride : int;  (* scratch-slot stride *)
  l_ostride : int;  (* out-slot stride *)
  l_dphase : int;  (* data-read phase *)
  l_offs : int;  (* conflict phase, 1..7 *)
  l_ops : (string * string) list;  (* reduction (suffix, operator) mix *)
}

let redux_pool = [ ("sum", "+"); ("xor", "^"); ("or", "|") ]

let draw_shape rng ~rcount ~max_offs =
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  let l_mult = pick [| 3; 5; 7; 11; 13 |] in
  let l_stride = pick [| 1; 3; 5; 7 |] in
  let l_ostride = pick [| 1; 3; 5 |] in
  let l_dphase = Rng.int rng data_slots in
  (* The conflict phase must stay below the period or the planted
     guard can never fire; max_offs = min 7 (m - 1). *)
  let l_offs = 1 + Rng.int rng max_offs in
  (* Rotate the op pool by a random amount, then keep [rcount] ops. *)
  let rot = Rng.int rng (List.length redux_pool) in
  let rotated =
    List.mapi (fun i _ -> List.nth redux_pool ((i + rot) mod List.length redux_pool))
      redux_pool
  in
  let l_ops = List.filteri (fun i _ -> i < rcount) rotated in
  { l_mult; l_stride; l_ostride; l_dphase; l_offs; l_ops }

let conflict_period k =
  if k.k_misspec <= 0.0 then None
  else Some (max 5 (int_of_float (Float.round (1.0 /. k.k_misspec))))

let emit_source knobs shapes period =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "// generated scenario: %s\n" (spec_of_knobs knobs);
  out "global n;\nglobal delta;\nglobal gseed;\n";
  out "global data[%d];\n" data_slots;
  let cs =
    match period with Some m -> cfl_slots ~trip:knobs.k_trip ~m | None -> 0
  in
  List.iteri
    (fun l (sh : loop_shape) ->
      out "global scratch%d[%d];\n" l knobs.k_heap;
      out "global conf%d[%d];\n" l conf_slots;
      out "global out%d[%d];\n" l out_slots;
      if cs > 0 then out "global cfl%d[%d];\n" l cs;
      List.iter (fun (sfx, _) -> out "global racc%d_%s[%d];\n" l sfx red_slots) sh.l_ops)
    shapes;
  out "\nfn main() {\n";
  (* The init loops below carry a multiply-add recurrence on a local,
     so loop selection REJECTS them (like the checksum loops): they
     must run sequentially, never compete with the hot loops for
     weight, and never plan conflicting site->heap assignments — a
     selected data-init writes [data] privately and would evict every
     hot loop (which needs [data] read-only) from the greedy pick when
     a small train trip count makes the hot loops lighter. *)
  out "  var dv = gseed;\n";
  out "  for (iz = 0; iz < %d) {\n" data_slots;
  out "    dv = (dv * 1103515245 + 12345) %% 1000003;\n";
  out "    data[iz] = dv;\n";
  out "  }\n";
  (* Pre-fill every conflict channel with its constant so an
     undetected cross-interval read (the reader's snapshot value)
     still observes what the sequential run would.  [cq] only forces
     the carried dependence; the stored value stays the constant. *)
  if cs > 0 then begin
    out "  var cq = gseed + 5;\n";
    List.iteri
      (fun l _ ->
        out "  for (ci%d = 0; ci%d < %d) {\n" l l cs;
        out "    cq = (cq * 1103515245 + 12345) %% 65536;\n";
        out "    cfl%d[ci%d] = %d;\n" l l (cfl_base l);
        out "  }\n")
      shapes
  end;
  (* Loop bounds must be loop-invariant locals (a global bound reads
     as loop-variant to the analysis), like the five ports do. *)
  out "  var nn = n;\n";
  List.iteri
    (fun l (sh : loop_shape) ->
      let k = Printf.sprintf "k%d" l in
      out "  var acc%d = 0;\n" l;
      out "  for (%s = 0; %s < nn) {\n" k k;
      out "    var s = (%s * %d + gseed) %% 8191;\n" k sh.l_mult;
      out "    conf%d[%s %% %d] = s + %s;\n" l k conf_slots k;
      for d = 0 to knobs.k_reuse - 1 do
        out "    scratch%d[(%s * %d + %d) %% %d] = s + %d;\n" l k sh.l_stride d
          knobs.k_heap (7 * d)
      done;
      out "    s = s + scratch%d[(%s * %d) %% %d];\n" l k sh.l_stride knobs.k_heap;
      out "    var p%d = malloc(2);\n" l;
      out "    p%d[0] = s & 255;\n" l;
      out "    p%d[1] = %s + 1;\n" l k;
      out "    s = s + p%d[0] + p%d[1] * 3;\n" l l;
      out "    free(p%d);\n" l;
      out "    s = s + data[(%s * 7 + %d) %% %d];\n" k sh.l_dphase data_slots;
      List.iter
        (fun (sfx, op) ->
          let mask = match sfx with "sum" -> 1023 | "xor" -> 255 | _ -> 65535 in
          out "    racc%d_%s[%s %% %d] = racc%d_%s[%s %% %d] %s (s & %d);\n" l sfx k
            red_slots l sfx k red_slots op mask)
        sh.l_ops;
      out "    acc%d = acc%d + (s & 7);\n" l l;
      (match period with
      | None -> ()
      | Some m ->
        out "    if ((%s + delta) %% %d == %d) {\n" k m sh.l_offs;
        out "      cfl%d[((%s + delta) / %d) %% %d] = %d;\n" l k m cs (cfl_base l);
        out "    }\n";
        out "    if (%s %% %d == %d) {\n" k m sh.l_offs;
        out "      s = s + cfl%d[(%s / %d) %% %d];\n" l k m cs;
        out "    }\n");
      out "    out%d[(%s * %d + %d) %% %d] = s;\n" l k sh.l_ostride l out_slots;
      out "  }\n";
      out "  print(\"loop %d acc %%d\\n\", acc%d);\n" l l)
    shapes;
  out "  var cs = 0;\n";
  List.iteri
    (fun l (sh : loop_shape) ->
      out "  for (cv%d = 0; cv%d < %d) {\n" l l out_slots;
      out "    cs = (cs * 31 + out%d[cv%d]) %% 1000000007;\n" l l;
      out "  }\n";
      List.iter
        (fun (sfx, _) ->
          out "  for (cr%d%s = 0; cr%d%s < %d) {\n" l sfx l sfx red_slots;
          out "    cs = (cs * 33 + racc%d_%s[cr%d%s]) %% 1000000007;\n" l sfx l sfx;
          out "  }\n")
        sh.l_ops)
    shapes;
  out "  print(\"checksum %%d\\n\", cs);\n";
  out "  return 0;\n}\n";
  Buffer.contents b

let generate knobs =
  (match validate knobs with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Scenario_gen.generate: " ^ msg));
  let rng = Rng.create ((knobs.k_seed * 2654435761) lxor 0x5ce) in
  let rcount = int_of_float (Float.round (knobs.k_redux *. 3.0)) in
  let period = conflict_period knobs in
  let max_offs = match period with Some m -> min 7 (m - 1) | None -> 7 in
  let shapes = List.init knobs.k_loops (fun _ -> draw_shape rng ~rcount ~max_offs) in
  let source = emit_source knobs shapes period in
  let name = "scenario:" ^ spec_of_knobs knobs in
  let expect =
    { x_private =
        List.concat
          (List.mapi
             (fun l _ ->
               [ Printf.sprintf "scratch%d" l; Printf.sprintf "conf%d" l;
                 Printf.sprintf "out%d" l ]
               @ if period = None then [] else [ Printf.sprintf "cfl%d" l ])
             shapes);
      x_redux =
        List.concat
          (List.mapi
             (fun l (sh : loop_shape) ->
               List.map (fun (sfx, _) -> Printf.sprintf "racc%d_%s" l sfx) sh.l_ops)
             shapes);
      x_readonly = [ "data"; "gseed"; "n"; "delta" ];
      x_hot_loops = knobs.k_loops }
  in
  let trip = knobs.k_trip in
  let workload =
    Workload.make ~name
      ~description:
        (Printf.sprintf "generated scenario (%d loop%s, trip %d, misspec %.3f)"
           knobs.k_loops
           (if knobs.k_loops = 1 then "" else "s")
           trip knobs.k_misspec)
      ~source ~max_scale:scenario_max_scale
      (fun input ~scale ->
        match input with
        | Workload.Train ->
          [ ("n", max 8 (trip / 4)); ("delta", 0); ("gseed", knobs.k_seed + 11) ]
        | Workload.Ref -> [ ("n", trip * scale); ("delta", 1); ("gseed", knobs.k_seed + 11) ]
        | Workload.Alt ->
          [ ("n", max 8 (trip / 2)); ("delta", 1); ("gseed", knobs.k_seed + 23) ])
  in
  { sc_knobs = knobs; sc_name = name; sc_source = source; sc_expect = expect;
    sc_conflict_period = period;
    sc_conflict_offsets = List.map (fun (sh : loop_shape) -> sh.l_offs) shapes;
    sc_workload = workload }

let conflict_iterations t ~loop ~n =
  match t.sc_conflict_period with
  | None -> []
  | Some m ->
    let offs = List.nth t.sc_conflict_offsets loop in
    let rec collect k acc = if k >= n then List.rev acc else collect (k + m) (k :: acc) in
    collect offs []

(* At workers = 1 every planted reader iteration squashes exactly once
   (the pair shares a machine, so the inline shadow catches it at any
   interval distance, and each recovery respawns the cohort with clean
   metadata), making this count exact — provided throttling is off and
   n stays within the no-reuse channel width (n <= m * cfl slots).  At
   workers >= 2 it is an upper bound: pairs split across workers AND
   across an interval boundary go undetected (and, by construction,
   still commit the sequential value). *)
let expected_misspecs t ~n =
  List.fold_left
    (fun acc loop -> acc + List.length (conflict_iterations t ~loop ~n))
    0
    (List.init (List.length t.sc_conflict_offsets) Fun.id)

let workload_of_spec spec =
  match knobs_of_spec spec with
  | Error _ as e -> e
  | Ok k -> (
    let name = "scenario:" ^ spec_of_knobs k in
    match Workloads.find name with
    | Some w -> Ok w
    | None ->
      let t = generate k in
      Workloads.register t.sc_workload;
      Ok t.sc_workload)

let corpus ~seed ~count =
  let rng = Rng.create seed in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  List.init count (fun _ ->
      generate
        { k_seed = Rng.int rng 1_000_000;
          k_loops = 1 + Rng.int rng 2;
          k_trip = 24 + (8 * Rng.int rng 6);
          k_heap = 16 * (1 + Rng.int rng 8);
          k_reuse = 1 + Rng.int rng 6;
          k_redux = pick [| 0.0; 0.25; 0.5; 0.75; 1.0 |];
          k_misspec = pick [| 0.0; 0.0; 0.05; 0.1; 0.15 |] })
