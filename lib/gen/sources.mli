(** The one source-loader interface behind every way of naming a
    program: [workload:<name>], [file:<path>] and [scenario:<spec>].
    The CLI ([run], [file], [gen]) and the jobs manifest both resolve
    sources here, so the three kinds share parsing and error
    reporting (the manifest prefixes line numbers). *)

type t = {
  src_kind : string;  (** ["workload"], ["file"] or ["scenario"] *)
  src_workload : Privateer_workloads.Workload.t option;
      (** [Some] for workload/scenario sources (scenarios resolve to
          registered workloads); [None] for raw files *)
  src_fresh : unit -> Privateer_ir.Ast.program;
      (** a fresh AST per call — concurrent pipelines never share one *)
}

val kinds : string
(** Human-readable list of accepted kinds, for error messages. *)

val lookup_workload :
  string -> (Privateer_workloads.Workload.t, string) result
(** Resolve a workload name: [scenario:<spec>] generates (and
    registers) the scenario; anything else is
    {!Privateer_workloads.Workloads.lookup}. *)

val parse : ?dir:string -> string -> (t, string) result
(** Parse a [kind:arg] source.  [file:] paths resolve relative to
    [dir] (default ["."]) and are read eagerly, so a missing file is
    an immediate error.  A string without a kind prefix is an error
    naming the accepted kinds. *)
