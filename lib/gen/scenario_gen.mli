(** Seeded synthetic Cmini scenario generator.

    Emits valid Cmini programs with tunable knobs — loop count, trip
    count, heap footprint (slots touched, reuse depth), reduction
    density and a target misspeculation rate realized by planted
    cross-iteration conflicts — each scenario carrying its expected
    classification, so generated corpora double as oracles.  All
    randomness comes from {!Privateer_support.Rng}: the same knobs
    always produce byte-identical source ([docs/SCENARIOS.md] states
    the full reproducibility contract). *)

(** Generator knobs.  Every field has a spec-string key (in parens). *)
type knobs = {
  k_seed : int;  (** (seed) data/shape seed, >= 0 *)
  k_loops : int;  (** (loops) hot-loop count, 1..8 *)
  k_trip : int;  (** (trip) base trip count per hot loop, 8..65536 *)
  k_heap : int;  (** (heap) private scratch slots per loop, 1..65536 *)
  k_reuse : int;  (** (reuse) slots written+read per iteration, 1..64 *)
  k_redux : float;  (** (redux) reduction density in [0, 1] *)
  k_misspec : float;  (** (misspec) target misspec rate: 0 or [0.01, 0.2] *)
}

val default_knobs : knobs
(** [seed=1 loops=1 trip=64 heap=64 reuse=4 redux=0.5 misspec=0]. *)

val knobs_of_spec : string -> (knobs, string) result
(** Parse a comma-separated [key=value] spec ([seed=7,trip=96,...]);
    unmentioned knobs keep their defaults.  [Error] names the bad
    key/value or violated range. *)

val spec_of_knobs : knobs -> string
(** Canonical spec string: every knob, fixed order.  Round-trips
    through {!knobs_of_spec}. *)

(** Expected classification carried by a generated scenario. *)
type expect = {
  x_private : string list;  (** globals the plan must place in a private heap *)
  x_redux : string list;  (** globals the plan must place in a reduction heap *)
  x_readonly : string list;  (** globals never written in the hot loops *)
  x_hot_loops : int;  (** hot loops that must be selected+parallelized *)
}

type t = {
  sc_knobs : knobs;
  sc_name : string;  (** registry name: ["scenario:" ^ canonical spec] *)
  sc_source : string;  (** the generated Cmini program *)
  sc_expect : expect;
  sc_conflict_period : int option;
      (** [Some m]: each hot loop plants a conflict every [m]-th
          iteration; [None] when [k_misspec = 0] *)
  sc_conflict_offsets : int list;
      (** per-loop phase of the planted conflicts (in [1, 7]) *)
  sc_workload : Privateer_workloads.Workload.t;
      (** ready to run: train input keeps the conflicts dormant, ref /
          alt arm them; scale multiplies the trip count *)
}

val generate : knobs -> t
(** Deterministic: byte-identical output for equal knobs. *)

val conflict_iterations : t -> loop:int -> n:int -> int list
(** Iterations (ascending) of hot loop [loop] (0-based) at trip count
    [n] whose planted read conflicts with the previous iteration's
    write. *)

val expected_misspecs : t -> n:int -> int
(** Oracle for the realized misspeculation count of one [ref] run at
    trip count [n], summed over all hot loops.  Exact at one worker
    with throttling off (every planted pair shares the machine, so the
    inline shadow catches each reader once at any checkpoint period);
    an upper bound at two or more workers, where a pair split across
    both workers and an interval boundary commits silently — with the
    sequential value, by construction. *)

val workload_of_spec : string -> (Privateer_workloads.Workload.t, string) result
(** Generate the scenario for a spec and register it in
    {!Privateer_workloads.Workloads} under its canonical name (a
    cache: re-resolving an equivalent spec returns the same instance,
    preserving its parsed-AST cache). *)

val corpus : seed:int -> count:int -> t list
(** [count] scenarios with knob draws from a seeded Rng — small trips
    and mixed misspec rates, sized for stress corpora. *)
