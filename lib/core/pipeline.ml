(* The Privateer pipeline: the public, end-to-end API.

   profile (train input) -> classify & select -> transform ->
   speculative parallel execution (ref input), with sequential
   execution of the original program as the baseline.

   [setup] callbacks poke input parameters (sizes, seeds) into scalar
   globals after the interpreter lays the program out and before the
   entry function runs — the workload's "command line". *)

open Privateer_interp
open Privateer_profile
open Privateer_analysis
open Privateer_transform
open Privateer_runtime
open Privateer_parallel

type setup = Interp.t -> unit

let no_setup : setup = fun _ -> ()

(* Set a scalar global's value; the canonical setup helper. *)
let set_global (st : Interp.t) name v =
  match Hashtbl.find_opt st.globals name with
  | Some addr -> Privateer_machine.Machine.set_int st.machine addr v
  | None -> invalid_arg ("Pipeline.set_global: unknown global " ^ name)

(* ---- stage wrappers -------------------------------------------------- *)

let parse = Privateer_lang.Parser.parse_program_exn

(* Profile a training run.  [config.profilers] selects the profiler
   set (or the reference oracle); [pool] lets the fast frontend drain
   event batches on pool domains.  The profiling wall time (run +
   consumer sync) is stamped on the profiler — reporting only, exempt
   from the determinism contract. *)
let profile ?(setup = no_setup) ?(config = Runtime_config.default) ?pool program =
  let st = Interp.create ~cost:Cost.default program in
  let p = Profiler.create ~profilers:config.Runtime_config.profilers ?pool () in
  Profiler.attach p st;
  setup st;
  let t0 = Privateer_support.Clock.now_ns () in
  ignore (Interp.run_entry st);
  Profiler.sync p;
  Profiler.set_wall_ns p (Privateer_support.Clock.now_ns () -. t0);
  (p, st)

(* Profile, select, transform. *)
let compile ?(setup = no_setup) ?config ?pool program =
  let profiler, _ = profile ~setup ?config ?pool program in
  let selection = Selection.select program profiler in
  let result = Transform.apply program profiler selection in
  (result, profiler)

(* Sequential run of any program (original or transformed). *)
type seq_run = { seq_cycles : int; seq_output : string; seq_result : Value.t }

let run_sequential ?(setup = no_setup) ?(cost = Cost.default) program =
  let st = Interp.create ~cost program in
  setup st;
  let result = Interp.run_entry st in
  { seq_cycles = st.cycles; seq_output = Interp.output st; seq_result = result }

(* Speculative parallel run of a transformed program. *)
type par_run = {
  par_cycles : int;
  par_output : string;
  par_result : Value.t;
  stats : Stats.t;
  fallbacks : int;
}

let run_parallel ?(setup = no_setup) ?(config = Executor.default_config) ?pool
    (tr : Transform.result) =
  let st = Interp.create ~cost:config.Executor.costs.base tr.program in
  let ex = Executor.create ?pool tr.manifest config in
  ex.stats.separation_checks_elided <- Manifest.elided_check_count tr.manifest;
  Executor.install ex st;
  setup st;
  let result = Interp.run_entry st in
  { par_cycles = st.cycles; par_output = Interp.output st; par_result = result;
    stats = ex.stats; fallbacks = ex.fallbacks }

(* Per-loop engine health of a parallel run, sorted by loop id:
   invocations, misspeculations, wall cycles, throttle demotions. *)
let loop_report (run : par_run) = Stats.loop_table run.stats

(* ---- whole-experiment convenience ------------------------------------ *)

type experiment = {
  sequential : seq_run;
  parallel : par_run;
  speedup : float;
  transform : Transform.result;
}

(* Profile on [train], evaluate on [run] — the paper's methodology
   (train vs ref inputs). *)
let experiment ?(train = no_setup) ?(run = no_setup)
    ?(config = Executor.default_config) program =
  let tr, _profiler = compile ~setup:train ~config program in
  let sequential = run_sequential ~setup:run program in
  let parallel = run_parallel ~setup:run ~config tr in
  let speedup = float_of_int sequential.seq_cycles /. float_of_int parallel.par_cycles in
  { sequential; parallel; speedup; transform = tr }
