(** The Privateer pipeline — the library's public, end-to-end API.

    {[
      let program = Pipeline.parse source in
      let tr, _profiler = Pipeline.compile ~setup program in
      let seq = Pipeline.run_sequential ~setup program in
      let par = Pipeline.run_parallel ~setup ~config tr in
      assert (String.equal seq.seq_output par.par_output)
    ]}

    [setup] callbacks poke input parameters into scalar globals after
    the interpreter lays the program out and before the entry function
    runs — the workload's "command line".  The paper's methodology
    profiles on a training input and evaluates on a different one;
    pass different [setup]s to [compile] and the run functions. *)

type setup = Privateer_interp.Interp.t -> unit

val no_setup : setup

(** Set a scalar global before the run.
    @raise Invalid_argument on unknown globals. *)
val set_global : Privateer_interp.Interp.t -> string -> int -> unit

(** Parse Cmini source into the IR.
    @raise Failure with positions on lexical/syntax errors. *)
val parse : ?entry:string -> string -> Privateer_ir.Ast.program

(** Instrumented training run.  [config.profilers] selects which
    profilers run (default: all five; ["reference"] selects the
    monolithic oracle — answers are identical either way); [pool]
    lets the fast frontend drain event batches on pool domains.  The
    profiling wall time is stamped on the returned profiler
    ([Profiler.wall_ns]) — reporting only, exempt from the determinism
    contract. *)
val profile :
  ?setup:setup ->
  ?config:Privateer_parallel.Runtime_config.t ->
  ?pool:Privateer_support.Domain_pool.t ->
  Privateer_ir.Ast.program ->
  Privateer_profile.Profiler.t * Privateer_interp.Interp.t

(** Profile, classify, select and transform: the whole compiler.
    [config]/[pool] are {!profile}'s. *)
val compile :
  ?setup:setup ->
  ?config:Privateer_parallel.Runtime_config.t ->
  ?pool:Privateer_support.Domain_pool.t ->
  Privateer_ir.Ast.program ->
  Privateer_transform.Transform.result * Privateer_profile.Profiler.t

type seq_run = {
  seq_cycles : int;  (** simulated cycles of the whole program *)
  seq_output : string;  (** everything [print] emitted *)
  seq_result : Privateer_interp.Value.t;  (** the entry's return value *)
}

(** Plain sequential execution (of an original or transformed
    program). *)
val run_sequential :
  ?setup:setup -> ?cost:Privateer_interp.Cost.t -> Privateer_ir.Ast.program -> seq_run

type par_run = {
  par_cycles : int;
      (** whole-program simulated cycles: sequential sections plus each
          parallel invocation's wall-clock *)
  par_output : string;
  par_result : Privateer_interp.Value.t;
  stats : Privateer_runtime.Stats.t;
      (** checkpoints, misspeculations, private bytes, overhead
          breakdown *)
  fallbacks : int;
      (** invocations run sequentially after a failed preheader
          prediction *)
}

(** Speculative parallel execution of a transformed program under the
    DOALL executor.

    [config] is a {!Privateer_parallel.Runtime_config.t} (of which
    [Executor.config] is a re-export) — build one with
    [Runtime_config.make].  Its [host_domains] field selects how many
    host OCaml domains the engine's host work (checkpoint extraction,
    interval reset, spawn setup) fans out over, and [pool_cap] sizes
    the shadow-page recycling pool.  Both are invisible to the
    simulation: for any setting, [par_output], [par_result],
    [par_cycles] and every [stats] counter are byte-identical to the
    sequential ([host_domains = 1], [pool_cap = 0]) run — only the
    host wall-clock changes.

    [pool] supplies the host domain pool explicitly, bypassing the
    process-wide {!Privateer_support.Domain_pool.shared} registry; the
    job server uses this so concurrent pipelines share one pool
    without one run's [shared] call shutting down a pool in use by
    another. *)
val run_parallel :
  ?setup:setup ->
  ?config:Privateer_parallel.Runtime_config.t ->
  ?pool:Privateer_support.Domain_pool.t ->
  Privateer_transform.Transform.result ->
  par_run

(** Per-loop engine health of a parallel run, sorted by loop id:
    invocations, misspeculations, wall cycles, throttle demotions and
    suspensions. *)
val loop_report :
  par_run -> (int * Privateer_runtime.Stats.loop_stats) list

type experiment = {
  sequential : seq_run;
  parallel : par_run;
  speedup : float;
  transform : Privateer_transform.Transform.result;
}

(** Train on [train], evaluate on [run]: compile once, run both ways,
    report the whole-program speedup. *)
val experiment :
  ?train:setup ->
  ?run:setup ->
  ?config:Privateer_parallel.Runtime_config.t ->
  Privateer_ir.Ast.program ->
  experiment
