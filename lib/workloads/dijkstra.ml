(* dijkstra (MiBench): repeated single-source shortest paths.

   The outer loop over sources is conceptually DOALL, but every
   iteration reuses two global data structures — a linked-list work
   queue (Q_head/Q_tail and its heap-allocated nodes) and the
   pathcost table — creating dense false dependences.  Privateer:

   - pathcost, Q_head, Q_tail        -> private heap
   - queue nodes (malloc in enqueue) -> short-lived heap
   - adj (adjacency matrix)          -> read-only heap
   - the "queue empty at iteration start" handoff (each iteration's
     first enqueue reads the NULL the previous iteration's last
     dequeue wrote) -> value prediction on Q_head
   - never-taken underflow check     -> control speculation
   - per-source result printing      -> deferred I/O

   This mirrors the paper's motivating example (Figure 2) including
   its Extras row in Table 3: Value, Control, I/O. *)

let max_n = 128

let source =
  Printf.sprintf
    {|
// Parameters (set by the harness before main runs).
global nnodes;
global seed;

// Shared data structures reused across outer-loop iterations.
global adj[%d];        // nnodes x nnodes edge weights
global pathcost[%d];   // shortest-path cost table
global Q_head;         // linked-list work queue
global Q_tail;
global err_count;      // only touched on (never-taken) error paths

fn lcg() {
  seed = (seed * 1103515245 + 12345) %% 2147483648;
  return seed;
}

fn init_graph() {
  var n = nnodes;
  for (i = 0; i < n) {
    for (j = 0; j < n) {
      adj[i * n + j] = lcg() %% 100 + 1;
    }
  }
}

fn enqueue(v) {
  var node = malloc(2);
  node[0] = v;
  node[1] = 0;
  if (Q_head == 0) {
    Q_head = node;
    Q_tail = node;
  } else {
    var t = Q_tail;
    t[1] = node;
    Q_tail = node;
  }
}

fn dequeue() {
  var node = Q_head;
  if (node == 0) {
    // Queue underflow: never happens; control speculation prunes it.
    err_count = err_count + 1;
    return 0 - 1;
  }
  var v = node[0];
  Q_head = node[1];
  if (Q_head == 0) {
    Q_tail = 0;
  }
  free(node);
  return v;
}

fn relax(src) {
  var n = nnodes;
  for (i = 0; i < n) {
    pathcost[i] = 1000000000;
  }
  pathcost[src] = 0;
  enqueue(src);
  while (Q_head != 0) {
    var v = dequeue();
    var d = pathcost[v];
    for (j = 0; j < n) {
      var ncost = d + adj[v * n + j];
      if (ncost < pathcost[j]) {
        pathcost[j] = ncost;
        enqueue(j);
      }
    }
  }
  var s = 0;
  for (q = 0; q < n) {
    s = s + pathcost[q];
  }
  print("src %%d cost %%d\n", src, s);
}

fn main() {
  init_graph();
  var n = nnodes;
  for (src = 0; src < n) {
    relax(src);
  }
  return 0;
}
|}
    (max_n * max_n) max_n

(* Scaling: nnodes grows linearly per scale step; ref reaches the
   max_n=128 graph cap exactly at scale 4 (cost grows ~n^3). *)
let workload : Workload.t =
  Workload.make ~name:"dijkstra"
    ~description:"MiBench dijkstra: repeated SSSP with a reused work queue" ~source
    ~max_scale:4
    ~paper_extras:[ "Value"; "Control"; "I/O" ]
    (fun input ~scale ->
      match input with
      | Workload.Train -> [ ("nnodes", 14 + (6 * (scale - 1))); ("seed", 7) ]
      | Workload.Ref -> [ ("nnodes", 48 + (16 * (scale - 1))); ("seed", 12345) ]
      | Workload.Alt -> [ ("nnodes", 24 + (8 * (scale - 1))); ("seed", 999) ])
