(* swaptions (PARSEC): HJM-style Monte-Carlo swaption pricing.

   Each outer-loop iteration simulates one swaption, allocating a
   number of vectors and matrices (arrays of pointers to row vectors)
   that flow through helper functions and are freed before the
   iteration ends — the linked structure that defeats the LRPD family
   (paper: 17 privatized objects, 15 of them short-lived).  A global
   scratch buffer and the results table are iteration-private.
   Static analysis cannot prove the loop parallel (pointer
   indirection), so the non-speculative baseline leaves it alone. *)

let max_swaptions = 2048

let source =
  Printf.sprintf
    {|
global nswaptions;
global ntrials;
global seed;

global params[%d];     // per-swaption rate parameters (read-only)
global results[%d];    // per-swaption price (private: written per iteration)
global workbuf[32];    // scratch reused by every iteration (private)
global err_count;

// rows x cols matrix as an array of row-vector pointers: the linked
// layout the paper calls out.
fn alloc_matrix(rows, cols) {
  var m = malloc(rows);
  for (r = 0; r < rows) {
    m[r] = malloc(cols);
  }
  return m;
}

fn free_matrix(m, rows) {
  for (r = 0; r < rows) {
    free(m[r]);
  }
  free(m);
}

// Fill the forward-rate matrix row by row with a deterministic
// pseudo-random walk seeded from this swaption's parameter.
fn fill_forward(m, rows, cols, p0) {
  var state = p0;
  for (r = 0; r < rows) {
    var row = m[r];
    for (c = 0; c < cols) {
      state = (state * 1103515245 + 12345) %% 2147483648;
      row[c] = 0.02 +. itof(state %% 1000) /. 50000.0;
    }
  }
}

// Discount factors along one path, into a short-lived vector.
fn discount(row, cols, disc) {
  var acc = 1.0;
  for (c = 0; c < cols) {
    acc = acc /. (1.0 +. row[c]);
    disc[c] = acc;
  }
}

fn simulate(idx) {
  var rows = 8;
  var cols = 12;
  var fwd = alloc_matrix(rows, cols);
  var disc = malloc(cols);
  if (fwd == 0) {
    // Allocation failure path: never taken, control-speculated away.
    err_count = err_count + 1;
    return 0.0;
  }
  fill_forward(fwd, rows, cols, params[idx]);
  var sum = 0.0;
  for (r = 0; r < rows) {
    var row = fwd[r];
    discount(row, cols, disc);
    // swap payoff along this path, accumulated in the scratch buffer
    var payoff = 0.0;
    for (c = 0; c < cols) {
      workbuf[c %% 32] = disc[c] *. (row[c] -. 0.03);
      payoff = payoff +. workbuf[c %% 32];
    }
    sum = sum +. fmax(payoff, 0.0);
  }
  free(disc);
  free_matrix(fwd, rows);
  return sum /. itof(rows);
}

fn init_params() {
  var n = nswaptions;
  var s = seed;
  for (i = 0; i < n) {
    s = (s * 69069 + 1) %% 2147483648;
    params[i] = s;
  }
}

fn main() {
  init_params();
  var n = nswaptions;
  for (i = 0; i < n) {
    results[i] = simulate(i);
  }
  var total = 0.0;
  for (j = 0; j < n) {
    total = total +. results[j];
  }
  print("swaptions %%d total %%f\n", n, total);
  return 0;
}
|}
    max_swaptions max_swaptions

(* Scaling: more swaptions per run (ref 384..1536 under the
   max_swaptions=2048 params/results tables); every extra iteration
   allocates and frees its own linked matrices, so the short-lived
   heap traffic scales with the trip count. *)
let workload : Workload.t =
  Workload.make ~name:"swaptions"
    ~description:
      "PARSEC swaptions: per-iteration linked matrices (short-lived) plus private scratch"
    ~source ~max_scale:4
    ~paper_extras:[ "Value"; "Control" ]
    (fun input ~scale ->
      match input with
      | Workload.Train -> [ ("nswaptions", 12 * scale); ("ntrials", 1); ("seed", 3) ]
      | Workload.Ref -> [ ("nswaptions", 384 * scale); ("ntrials", 1); ("seed", 31337) ]
      | Workload.Alt -> [ ("nswaptions", 48 * scale); ("ntrials", 1); ("seed", 5) ])
