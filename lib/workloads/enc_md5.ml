(* enc-md5 (Trimaran): MD5 message digests for many data sets.

   A full MD5 implementation (64 rounds, sine-derived constant table,
   byte-level padding).  Parallelization of the outer loop over data
   sets is blocked by false dependences on the reused MD5 state object
   and the per-digest buffer, and by the printf of each digest:
   Privateer privatizes the state, marks the scratch buffer
   short-lived, defers the I/O, and control-speculates the never-taken
   input-validation path (paper Table 3: Control, I/O). *)

let max_data_words = 16384 (* 128 KiB of message data *)

let source =
  Printf.sprintf
    {|
global ndatasets;
global dsize;         // bytes per data set
global seed;

global data[%d];      // message bytes (read-only)
global ktab[64];      // MD5 sine constants (read-only)
global rtab[64];      // MD5 per-round rotate amounts (read-only)
global md5_state[4];  // A,B,C,D: reused across iterations -> private
global err_count;

fn lcg() {
  seed = (seed * 1103515245 + 12345) %% 2147483648;
  return seed;
}

fn init_tables() {
  for (i = 0; i < 64) {
    ktab[i] = ftoi(floor(fabs(sin(itof(i + 1))) *. 4294967296.0)) & 4294967295;
  }
  // Per-round rotate amounts (RFC 1321).
  for (j = 0; j < 4) {
    rtab[j * 4] = 7;
    rtab[j * 4 + 1] = 12;
    rtab[j * 4 + 2] = 17;
    rtab[j * 4 + 3] = 22;
    rtab[16 + j * 4] = 5;
    rtab[16 + j * 4 + 1] = 9;
    rtab[16 + j * 4 + 2] = 14;
    rtab[16 + j * 4 + 3] = 20;
    rtab[32 + j * 4] = 4;
    rtab[32 + j * 4 + 1] = 11;
    rtab[32 + j * 4 + 2] = 16;
    rtab[32 + j * 4 + 3] = 23;
    rtab[48 + j * 4] = 6;
    rtab[48 + j * 4 + 1] = 10;
    rtab[48 + j * 4 + 2] = 15;
    rtab[48 + j * 4 + 3] = 21;
  }
}

fn init_data() {
  // Word-granular generation keeps setup cheap relative to digesting.
  var words = ndatasets * dsize / 8;
  for (i = 0; i < words) {
    data[i] = lcg() | (lcg() << 31);
  }
}

fn rotl32(x, c) {
  return ((x << c) | (x >> (32 - c))) & 4294967295;
}

// One 64-byte chunk at byte address p.
fn md5_chunk(p) {
  var a = md5_state[0];
  var b = md5_state[1];
  var c = md5_state[2];
  var d = md5_state[3];
  for (i = 0; i < 64) {
    var f = 0;
    var g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d & 4294967295);
      g = i;
    } else { if (i < 32) {
      f = (d & b) | (~d & c & 4294967295);
      g = (5 * i + 1) %% 16;
    } else { if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) %% 16;
    } else {
      f = c ^ (b | (~d & 4294967295));
      g = (7 * i) %% 16;
    } } }
    var m = load1(p + g * 4) | (load1(p + g * 4 + 1) << 8)
            | (load1(p + g * 4 + 2) << 16) | (load1(p + g * 4 + 3) << 24);
    var tmp = d;
    d = c;
    c = b;
    var sum = (a + f + ktab[i] + m) & 4294967295;
    b = (b + rotl32(sum, rtab[i])) & 4294967295;
    a = tmp;
  }
  md5_state[0] = (md5_state[0] + a) & 4294967295;
  md5_state[1] = (md5_state[1] + b) & 4294967295;
  md5_state[2] = (md5_state[2] + c) & 4294967295;
  md5_state[3] = (md5_state[3] + d) & 4294967295;
}

fn digest(idx) {
  var len = dsize;
  if (len < 0) {
    // Invalid dataset length: never happens; control speculation.
    err_count = err_count + 1;
    return 0;
  }
  // Padded length: message + 0x80 + zeros + 8-byte bit length.
  var padded = ((len + 8) / 64 + 1) * 64;
  var buf = malloc(padded / 8 + 1);
  var src = &data + idx * len;
  for (i = 0; i < len) {
    store1(buf + i, load1(src + i));
  }
  store1(buf + len, 128);
  for (z = len + 1; z < padded - 8) {
    store1(buf + z, 0);
  }
  var bits = len * 8;
  for (q = 0; q < 8) {
    store1(buf + padded - 8 + q, (bits >> (q * 8)) & 255);
  }
  md5_state[0] = 1732584193;
  md5_state[1] = 4023233417;
  md5_state[2] = 2562383102;
  md5_state[3] = 271733878;
  var nchunks = padded / 64;
  for (ch = 0; ch < nchunks) {
    md5_chunk(buf + ch * 64);
  }
  free(buf);
  print("%%d: %%x %%x %%x %%x\n", idx, md5_state[0], md5_state[1], md5_state[2],
        md5_state[3]);
  return md5_state[0];
}

fn main() {
  init_tables();
  init_data();
  var n = ndatasets;
  for (d = 0; d < n) {
    digest(d);
  }
  return 0;
}
|}
    max_data_words

(* Scaling: more datasets per run with a fixed per-set size; ref at
   scale 4 digests 640 x 200 = 128000 bytes, just under the
   max_data_words=16384 (128 KiB) message buffer. *)
let workload : Workload.t =
  Workload.make ~name:"enc-md5"
    ~description:
      "Trimaran enc-md5: MD5 digests with a reused state object and per-digest buffer"
    ~source ~max_scale:4
    ~paper_extras:[ "Control"; "I/O" ]
    (fun input ~scale ->
      match input with
      | Workload.Train -> [ ("ndatasets", 10 + (6 * (scale - 1))); ("dsize", 120); ("seed", 23) ]
      | Workload.Ref -> [ ("ndatasets", 160 * scale); ("dsize", 200); ("seed", 777) ]
      | Workload.Alt -> [ ("ndatasets", 32 * scale); ("dsize", 56); ("seed", 91) ])
