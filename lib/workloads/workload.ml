(* Workload plumbing: each benchmark is a Cmini program plus input
   parameterizations (train for profiling, ref for evaluation, alt for
   the profile-stability check the paper performs).

   Parameterizations are scale-aware: [params input ~scale] returns the
   scalar globals for the given input at a scale factor.  Scale 1 is
   the paper-sized (scaled-down) input; higher scales grow both the
   iteration count and the touched heap footprint strictly, up to
   [max_scale] (bounded by each program's compile-time array sizes).

   The parsed AST is cached per workload instance ([program] parses
   once); [fresh_program] re-parses for consumers that must not share
   an AST across concurrent runs (the job server's repeat=N jobs). *)

type input = Train | Ref | Alt

let input_name = function Train -> "train" | Ref -> "ref" | Alt -> "alt"

let input_of_name = function
  | "train" -> Ok Train
  | "ref" -> Ok Ref
  | "alt" -> Ok Alt
  | s -> Error (Printf.sprintf "unknown input %S (train|ref|alt)" s)

type t = {
  name : string;
  description : string;
  source : string;
  (* Scalar globals to set for each input at a given scale factor. *)
  params : input -> scale:int -> (string * int) list;
  (* Largest scale with strict cycle/footprint growth (array caps). *)
  max_scale : int;
  (* What the paper's Table 3 lists under "Extras" for this program. *)
  paper_extras : string list;
  (* Parse-once AST cache; [fresh_program] bypasses it. *)
  cache : Privateer_ir.Ast.program option ref;
}

let make ?(max_scale = 1) ?(paper_extras = []) ~name ~description ~source params =
  { name; description; source; params; max_scale; paper_extras; cache = ref None }

let program t =
  match !(t.cache) with
  | Some p -> p
  | None ->
    let p = Privateer.Pipeline.parse t.source in
    t.cache := Some p;
    p

(* A fresh AST per call: concurrent pipelines must never share one. *)
let fresh_program t = Privateer.Pipeline.parse t.source

let check_scale t scale =
  if scale < 1 then Error (Printf.sprintf "scale must be >= 1, got %d" scale)
  else if scale > t.max_scale then
    Error
      (Printf.sprintf "workload %S supports scale 1..%d, got %d" t.name t.max_scale
         scale)
  else Ok ()

let params ?(scale = 1) t input =
  (match check_scale t scale with Ok () -> () | Error msg -> invalid_arg msg);
  t.params input ~scale

let setup ?(scale = 1) t input : Privateer.Pipeline.setup =
  let ps = params ~scale t input in
  fun st -> List.iter (fun (g, v) -> Privateer.Pipeline.set_global st g v) ps
