(* 052.alvinn (SPEC): neural-network training for autonomous driving.

   Each epoch runs the hot loop over training patterns.  The forward
   and backward passes use stack-allocated activation/error arrays
   that are declared in main, reached only through pointer arguments
   (the paper: "iterates over these arrays using pointer arithmetic
   and passes array references to callees, making static analysis
   difficult") — Privateer privatizes the four stack slots.  Weight
   *deltas* are accumulated into two global arrays through
   [w += e] updates (memory reductions) and the epoch error into a
   scalar local (register reduction) — the paper's "reductions on two
   global arrays as well as a scalar local variable". *)

let n_in = 16
let n_hid = 12
let n_out = 4
let max_patterns = 512

let source =
  Printf.sprintf
    {|
global npatterns;
global nepochs;
global seed;

global inputs[%d];    // npatterns x N_IN   (read-only)
global targets[%d];   // npatterns x N_OUT  (read-only)
global w_ih[%d];      // input->hidden weights  (read-only in hot loop)
global w_ho[%d];      // hidden->output weights (read-only in hot loop)
global dw_ih[%d];     // weight-delta accumulators (reduction)
global dw_ho[%d];     // weight-delta accumulators (reduction)

fn lcg() {
  seed = (seed * 1103515245 + 12345) %% 2147483648;
  return seed;
}

fn sigmoid(x) {
  return 1.0 /. (1.0 +. exp(-. x));
}

fn init_net() {
  var n = npatterns;
  for (p = 0; p < n) {
    for (i = 0; i < %d) {
      inputs[p * %d + i] = itof(lcg() %% 1000) /. 1000.0;
    }
    for (o = 0; o < %d) {
      targets[p * %d + o] = itof(lcg() %% 1000) /. 1000.0;
    }
  }
  for (u = 0; u < %d) {
    w_ih[u] = itof(lcg() %% 2000 - 1000) /. 2000.0;
  }
  for (v = 0; v < %d) {
    w_ho[v] = itof(lcg() %% 2000 - 1000) /. 2000.0;
  }
}

fn forward(p, hidden, out) {
  for (h = 0; h < %d) {
    var sum = 0.0;
    for (i = 0; i < %d) {
      sum = sum +. inputs[p * %d + i] *. w_ih[i * %d + h];
    }
    hidden[h] = sigmoid(sum);
  }
  for (o = 0; o < %d) {
    var sum2 = 0.0;
    for (h2 = 0; h2 < %d) {
      sum2 = sum2 +. hidden[h2] *. w_ho[h2 * %d + o];
    }
    out[o] = sigmoid(sum2);
  }
}

fn backward(p, hidden, out, err_hid, err_out) {
  var perr = 0.0;
  for (o = 0; o < %d) {
    var t = targets[p * %d + o];
    var y = out[o];
    var e = (t -. y) *. y *. (1.0 -. y);
    err_out[o] = e;
    perr = perr +. (t -. y) *. (t -. y);
  }
  for (h = 0; h < %d) {
    var acc = 0.0;
    for (o2 = 0; o2 < %d) {
      acc = acc +. err_out[o2] *. w_ho[h * %d + o2];
    }
    var hv = hidden[h];
    err_hid[h] = acc *. hv *. (1.0 -. hv);
  }
  // Accumulate weight deltas: associative-commutative updates, the
  // loop's memory reductions.
  for (h3 = 0; h3 < %d) {
    for (o3 = 0; o3 < %d) {
      dw_ho[h3 * %d + o3] = dw_ho[h3 * %d + o3] +. hidden[h3] *. err_out[o3];
    }
  }
  for (i2 = 0; i2 < %d) {
    for (h4 = 0; h4 < %d) {
      dw_ih[i2 * %d + h4] = dw_ih[i2 * %d + h4] +. inputs[p * %d + i2] *. err_hid[h4];
    }
  }
  return perr;
}

fn main() {
  init_net();
  var hidden[%d];
  var out[%d];
  var err_hid[%d];
  var err_out[%d];
  var n = npatterns;
  var epochs = nepochs;
  for (e = 0; e < epochs) {
    for (z = 0; z < %d) {
      dw_ih[z] = 0.0;
    }
    for (z2 = 0; z2 < %d) {
      dw_ho[z2] = 0.0;
    }
    var terr = 0.0;
    for (p = 0; p < n) {
      forward(p, hidden, out);
      terr = terr +. backward(p, hidden, out, err_hid, err_out);
    }
    for (u = 0; u < %d) {
      w_ih[u] = w_ih[u] +. 0.3 *. dw_ih[u] /. itof(n);
    }
    for (v = 0; v < %d) {
      w_ho[v] = w_ho[v] +. 0.3 *. dw_ho[v] /. itof(n);
    }
    print("epoch %%d rmse %%f\n", e, sqrt(terr /. itof(n)));
  }
  return 0;
}
|}
    (max_patterns * n_in) (max_patterns * n_out) (n_in * n_hid) (n_hid * n_out)
    (n_in * n_hid) (n_hid * n_out) (* globals *)
    n_in n_in n_out n_out (n_in * n_hid) (n_hid * n_out) (* init_net *)
    n_hid n_in n_in n_hid n_out n_hid n_out (* forward *)
    n_out n_out n_hid n_out n_out n_hid n_out n_out n_out n_in n_hid n_hid n_hid
    n_in (* backward *)
    n_hid n_out n_hid n_out (n_in * n_hid) (n_hid * n_out) (n_in * n_hid)
    (n_hid * n_out)
(* main *)

(* Scaling: the pattern set grows with scale (ref 96..384 under the
   max_patterns=512 input arrays); epoch counts stay fixed so the hot
   loop's trip count and the read-only footprint both scale. *)
let workload : Workload.t =
  Workload.make ~name:"052.alvinn"
    ~description:
      "SPEC 052.alvinn: pattern loop with private stack arrays and delta reductions"
    ~source ~max_scale:4
    (fun input ~scale ->
      match input with
      | Workload.Train -> [ ("npatterns", 24 + (8 * (scale - 1))); ("nepochs", 2); ("seed", 17) ]
      | Workload.Ref -> [ ("npatterns", 96 * scale); ("nepochs", 24); ("seed", 20202) ]
      | Workload.Alt -> [ ("npatterns", 64 + (16 * (scale - 1))); ("nepochs", 4); ("seed", 51) ])
