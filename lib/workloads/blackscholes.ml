(* blackscholes (PARSEC): Black-Scholes option pricing.

   The inner loop over options is embarrassingly parallel, and the
   non-speculative DOALL baseline can prove it (affine writes to
   prices[i]).  The hotter outer loop over pricing runs carries output
   dependences on the prices array — which is allocated in a
   *different function* and reaches the loop through a pointer stored
   in a global, defeating static layout analysis.  Privateer
   privatizes the array object (its allocation site), classifies the
   option inputs read-only, and parallelizes the outer loop in a
   single invocation (paper section 6.1). *)

let max_options = 1024

let source =
  Printf.sprintf
    {|
global numoptions;
global numruns;
global seed;

// Option inputs (read-only in the hot loop).
global sptprice[%d];
global strike[%d];
global rate[%d];
global volatility[%d];
global otime[%d];
global otype[%d];

// The pricing array is allocated in a helper function; only this
// pointer cell names it.
global prices_ptr;

fn lcg() {
  seed = (seed * 1103515245 + 12345) %% 2147483648;
  return seed;
}

fn frand(lo, hi) {
  return lo +. (hi -. lo) *. (itof(lcg() %% 10000) /. 10000.0);
}

fn init_options() {
  var n = numoptions;
  for (i = 0; i < n) {
    sptprice[i] = frand(20.0, 120.0);
    strike[i] = frand(20.0, 120.0);
    rate[i] = frand(0.01, 0.1);
    volatility[i] = frand(0.05, 0.65);
    otime[i] = frand(0.1, 2.0);
    otype[i] = lcg() %% 2;
  }
}

fn alloc_prices() {
  prices_ptr = malloc(%d);
}

// Cumulative normal distribution (Abramowitz-Stegun approximation),
// as in the PARSEC kernel.
fn cndf(x) {
  var sign = 0;
  var v = x;
  if (v <. 0.0) {
    v = -. v;
    sign = 1;
  }
  var xk = 1.0 /. (1.0 +. 0.2316419 *. v);
  var xk2 = xk *. xk;
  var xk3 = xk2 *. xk;
  var xk4 = xk3 *. xk;
  var xk5 = xk4 *. xk;
  var poly = 0.319381530 *. xk -. 0.356563782 *. xk2 +. 1.781477937 *. xk3
             -. 1.821255978 *. xk4 +. 1.330274429 *. xk5;
  var pdf = 0.39894228040143270 *. exp(-.0.5 *. v *. v);
  var cnd = 1.0 -. pdf *. poly;
  if (sign == 1) {
    cnd = 1.0 -. cnd;
  }
  return cnd;
}

fn bs_price(spot, k, r, vol, t, ty) {
  var sqrt_t = sqrt(t);
  var d1 = (log(spot /. k) +. (r +. 0.5 *. vol *. vol) *. t) /. (vol *. sqrt_t);
  var d2 = d1 -. vol *. sqrt_t;
  var nd1 = cndf(d1);
  var nd2 = cndf(d2);
  var fut = k *. exp(-. r *. t);
  var price = 0.0;
  if (ty == 0) {
    price = spot *. nd1 -. fut *. nd2;
  } else {
    price = fut *. (1.0 -. nd2) -. spot *. (1.0 -. nd1);
  }
  return price;
}

// Per-run volatility smoothing: a sequential recurrence, so only the
// outer loop's parallelization covers it.
fn run_bias() {
  var n = numoptions;
  var bias = 0.0;
  for (b = 0; b < n) {
    bias = 0.5 *. bias +. exp(-. volatility[b]);
  }
  return bias /. itof(n);
}

fn price_all() {
  var p = prices_ptr;
  var n = numoptions;
  var bias = run_bias();
  for (i = 0; i < n) {
    p[i] = bs_price(sptprice[i], strike[i], rate[i], volatility[i], otime[i],
                    otype[i]) *. (1.0 +. 0.001 *. bias);
  }
}

fn main() {
  init_options();
  alloc_prices();
  var runs = numruns;
  for (run = 0; run < runs) {
    price_all();
  }
  // Checksum over the committed final prices.
  var p = prices_ptr;
  var n = numoptions;
  var s = 0.0;
  for (i = 0; i < n) {
    s = s +. p[i];
  }
  print("checksum %%f\n", s);
  return 0;
}
|}
    max_options max_options max_options max_options max_options max_options
    max_options

(* Scaling: the option table grows with scale; ref hits the
   max_options=1024 arrays exactly at scale 4.  Run counts stay fixed
   so per-iteration work (and the privatized prices footprint) grows. *)
let workload : Workload.t =
  Workload.make ~name:"blackscholes"
    ~description:
      "PARSEC blackscholes: outer pricing loop with output deps on a pointer-reached array"
    ~source ~max_scale:4
    ~paper_extras:[ "Value" ]
    (fun input ~scale ->
      match input with
      | Workload.Train -> [ ("numoptions", 64 * scale); ("numruns", 6); ("seed", 11) ]
      | Workload.Ref -> [ ("numoptions", 256 * scale); ("numruns", 96); ("seed", 4242) ]
      | Workload.Alt -> [ ("numoptions", 128 + (64 * (scale - 1))); ("numruns", 24); ("seed", 77) ])
