(* The workload registry.

   The paper's five programs (section 6, Table 3) are built in;
   [register] lets generated scenarios (lib/gen) and tests join the
   suite as first-class citizens — [all]/[find]/[lookup] see them
   exactly like the builtins.  [lookup] owns the canonical
   unknown-workload error string shared by the CLI and the jobs
   manifest. *)

let builtin : Workload.t list =
  [ Alvinn.workload; Dijkstra.workload; Blackscholes.workload; Swaptions.workload;
    Enc_md5.workload ]

let registered : Workload.t list ref = ref []

let all () = builtin @ List.rev !registered

let names () = List.map (fun (w : Workload.t) -> w.name) (all ())

let find name = List.find_opt (fun (w : Workload.t) -> w.name = name) (all ())

(* Registration replaces an earlier registered workload of the same
   name (so re-generating a scenario under one name is idempotent) but
   never shadows a builtin. *)
let register (w : Workload.t) =
  if List.exists (fun (b : Workload.t) -> b.name = w.name) builtin then
    invalid_arg (Printf.sprintf "workload %S is a builtin and cannot be replaced" w.name)
  else
    registered :=
      w :: List.filter (fun (r : Workload.t) -> r.name <> w.name) !registered

let lookup name =
  match find name with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown workload %S (have: %s)" name
         (String.concat ", " (names ())))

let find_exn name =
  match lookup name with Ok w -> w | Error msg -> invalid_arg msg
