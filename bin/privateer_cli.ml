(* The privateer command-line driver.

     privateer list
     privateer plan <workload>
     privateer dump <workload> [--transformed]
     privateer run <workload> [-w N] [-i ref] [--scale S] [--inject RATE]
     privateer compare <workload> [-w N]
     privateer gen <spec> [--meta]     -- emit a generated scenario
     privateer file <path.cm> [-w N]   -- full pipeline on a Cmini file
     privateer serve <manifest> [--max-inflight N] [--queue-cap N]

   <workload> is any registry name, including scenario:<spec> — the
   generated scenario joins the registry and runs like a builtin.
*)

open Cmdliner
open Privateer
open Privateer_workloads

(* Workload names resolve through the shared source loader, so
   scenario:<spec> works everywhere a workload name does and the
   unknown-workload error string is the registry's canonical one. *)
let workload_conv =
  let parse s =
    match Privateer_gen.Sources.lookup_workload s with
    | Ok w -> Ok w
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt (w : Workload.t) -> Format.pp_print_string fmt w.name)

let input_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Workload.input_of_name s) in
  Arg.conv (parse, fun fmt i -> Format.pp_print_string fmt (Workload.input_name i))

let wl_arg = Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")

let input_arg =
  Arg.(value & opt input_conv Workload.Ref
       & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input set (train|ref|alt).")

let scale_arg =
  Arg.(value & opt int 1
       & info [ "scale" ] ~docv:"S"
           ~doc:"Input scale factor (1 = paper-sized; see each workload's max).")

(* Validate --scale against the workload's cap before running. *)
let checked_scale (wl : Workload.t) scale =
  match Workload.check_scale wl scale with
  | Ok () -> scale
  | Error msg ->
    Printf.eprintf "privateer: %s\n" msg;
    exit 124

let inject_arg =
  Arg.(value & opt float 0.0
       & info [ "inject" ] ~docv:"RATE"
           ~doc:"Inject misspeculation at this per-iteration rate.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

(* ---- runtime tuning flags, derived from Runtime_config ---------------- *)

module RC = Privateer_parallel.Runtime_config

(* Every engine-tuning flag (--workers, --host-domains, --checkpoint,
   --schedule, --adaptive, --throttle, --shadow-pool-cap, ...) comes
   from [Runtime_config.cli_bindings]: one optional string argument
   per table entry, folded over a base config.  Adding a knob to the
   table adds the flag here with no CLI change. *)
let bindings_term =
  List.fold_left
    (fun acc (b : RC.binding) ->
      let vopt = if b.b_flag_like then Some (Some "true") else None in
      let arg =
        Arg.(value
             & opt ?vopt (some string) None
             & info b.b_flags ~docv:b.b_docv ~doc:b.b_doc)
      in
      Term.(const (fun xs v -> (b, v) :: xs) $ acc $ arg))
    (Term.const []) RC.cli_bindings

(* Deterministically spaced injection at a given rate. *)
let spaced_injection rate =
  if rate <= 0.0 then None
  else
    Some
      (fun iter ->
        int_of_float (float_of_int (iter + 1) *. rate)
        > int_of_float (float_of_int iter *. rate))

(* The CLI's base config: library defaults with the historical 24
   simulated workers.  Unpassed flags leave the base untouched. *)
let config ?(inject = 0.0) bindings =
  let base = { RC.default with workers = 24 } in
  match RC.apply_bindings base bindings with
  | Ok c -> { c with RC.inject = spaced_injection inject }
  | Error msg ->
    Printf.eprintf "privateer: %s\n" msg;
    exit 124

(* ---- commands --------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "%-14s (scale 1..%d) %s\n" w.name w.max_scale w.description)
      (Workloads.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the registered workloads")
    Term.(const run $ const ())

let plan_cmd =
  let run wl =
    let program = Workload.program wl in
    let profiler, _ = Pipeline.profile ~setup:(Workload.setup wl Train) program in
    let selection = Privateer_analysis.Selection.select program profiler in
    List.iter
      (fun (p : Privateer_analysis.Selection.plan) ->
        Printf.printf "selected loop %d in %s (weight %d, extras: %s)\n" p.loop p.func
          p.weight
          (String.concat ", " (Privateer_analysis.Selection.extras p));
        print_endline (Privateer_analysis.Classify.to_string p.assignment);
        List.iter
          (fun (s, h) ->
            Printf.printf "  site %-20s -> %s heap\n"
              (Privateer_profile.Objname.site_to_string s)
              (Privateer_ir.Heap.name h))
          p.site_heap)
      selection.plans;
    List.iter
      (fun (r : Privateer_analysis.Selection.rejection) ->
        Printf.printf "rejected loop %d in %s: %s\n" r.rloop r.rfunc r.reason)
      selection.rejections
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show the heap assignment and loop selection")
    Term.(const run $ wl_arg)

let dump_cmd =
  let transformed =
    Arg.(value & flag & info [ "transformed" ] ~doc:"Dump after privatization.")
  in
  let run wl transformed =
    let program = Workload.program wl in
    if transformed then begin
      let tr, _ = Pipeline.compile ~setup:(Workload.setup wl Train) program in
      print_endline (Privateer_ir.Pp.program_str tr.program)
    end
    else print_endline (Privateer_ir.Pp.program_str program)
  in
  Cmd.v (Cmd.info "dump" ~doc:"Pretty-print a workload's IR")
    Term.(const run $ wl_arg $ transformed)

(* The engine configuration that shaped a run, so bench/CI JSON is
   self-describing instead of inferred from the invocation. *)
let config_json (cfg : RC.t) =
  let open Privateer_support.Json in
  Obj
    [ ("workers", Int cfg.workers); ("host_domains", Int cfg.host_domains);
      ("merge_shards", Int cfg.merge_shards);
      ( "pool_kind",
        String (Privateer_support.Domain_pool.kind_to_string cfg.pool_kind) );
      ( "host_controller",
        String (Privateer_parallel.Host_controller.mode_to_string cfg.host_controller)
      );
      ("schedule", String (Privateer_parallel.Schedule.to_string cfg.schedule));
      ("validation", String (RC.validation_to_string cfg.validation));
      ("pool_cap", Int cfg.pool_cap);
      ("profilers", List (List.map (fun p -> String p) cfg.profilers)) ]

(* Machine-readable report: the configuration, whole-run numbers,
   every stats counter, the Figure 8 breakdown, and the per-loop
   engine-health table. *)
let json_report ~config:cfg ~profile_ns ~seq ~(par : Pipeline.par_run) ~fallbacks =
  let open Privateer_support.Json in
  let stats = par.stats in
  let b = Privateer_runtime.Stats.breakdown stats in
  let loops =
    List.map
      (fun (loop, (ls : Privateer_runtime.Stats.loop_stats)) ->
        Obj
          [ ("loop", Int loop); ("invocations", Int ls.l_invocations);
            ("misspeculations", Int ls.l_misspeculations);
            ("wall_cycles", Int ls.l_wall_cycles); ("demotions", Int ls.l_demotions);
            ("suspended_invocations", Int ls.l_suspended_invocations) ])
      (Pipeline.loop_report par)
  in
  Obj
    [ ("config", config_json cfg);
      ("sequential_cycles", Int seq.Pipeline.seq_cycles);
      ("parallel_cycles", Int par.par_cycles);
      ( "speedup",
        Float (float_of_int seq.Pipeline.seq_cycles /. float_of_int par.par_cycles) );
      ("output_identical", Bool (String.equal seq.seq_output par.par_output));
      ("invocations", Int stats.invocations); ("checkpoints", Int stats.checkpoints);
      ("misspeculations", Int stats.misspeculations);
      ("recovered_iterations", Int stats.recovered_iterations);
      ("fallbacks", Int fallbacks); ("iterations", Int stats.iterations);
      ("private_bytes_read", Int stats.private_bytes_read);
      ("private_bytes_written", Int stats.private_bytes_written);
      ("separation_checks", Int stats.separation_checks);
      ("cyc_checkpoint", Int stats.cyc_checkpoint);
      ("cyc_recovery", Int stats.cyc_recovery);
      ("wall_cycles", Int stats.wall_cycles); ("workers", Int stats.workers);
      ( "breakdown",
        Obj
          [ ("useful", Float b.useful); ("private_read", Float b.private_read);
            ("private_write", Float b.private_write);
            ("checkpoint", Float b.checkpoint); ("spawn_join", Float b.spawn_join);
            ("other", Float b.other) ] );
      (* Host wall time of the profiling training run — instrumentation
         like merge_phase_ns, not part of the deterministic simulation
         (varies run to run; exemption table in docs/RUNTIME.md). *)
      ("profile_ns", Float profile_ns);
      (* Host wall time per merge phase — instrumentation, not part of
         the deterministic simulation (varies run to run). *)
      ( "merge_phase_ns",
        Obj
          [ ("index_fill", Float stats.ns_merge_fill);
            ("validate", Float stats.ns_merge_validate);
            ("sweep", Float stats.ns_merge_sweep) ] );
      (* Host-parallelism controller: wall time per interval stage and
         how often each stage ran parallel vs sequential — host-side
         instrumentation like merge_phase_ns (ns vary run to run; the
         decision counters depend only on config and workload). *)
      ( "host_stages",
        Obj
          [ ("ns_reset", Float stats.ns_reset);
            ("ns_extract", Float stats.ns_extract);
            ("ns_spawn", Float stats.ns_spawn);
            ("par_resets", Int stats.par_resets);
            ("seq_resets", Int stats.seq_resets);
            ("par_extracts", Int stats.par_extracts);
            ("seq_extracts", Int stats.seq_extracts);
            ("par_merges", Int stats.par_merges);
            ("seq_merges", Int stats.seq_merges);
            ("par_spawns", Int stats.par_spawns);
            ("seq_spawns", Int stats.seq_spawns) ] );
      (* Eager in-flight validation counters: deterministic for a given
         validation mode, but exempt from the cross-MODE identity
         contract (commit mode reports zeros for kills/checks/hits; the
         authoritative exemption table lives in docs/RUNTIME.md). *)
      ( "eager",
        Obj
          [ ("eager_kills", Int stats.eager_kills);
            ("eager_checks", Int stats.eager_checks);
            ("eager_hits", Int stats.eager_hits);
            ("squashed_iterations", Int stats.squashed_iterations);
            ("avoided_iterations", Int stats.avoided_iterations) ] );
      ("loops", List loops) ]

let report_run ~seq ~(par : Pipeline.par_run) ~fallbacks =
  let stats = par.stats in
  Printf.printf "sequential cycles : %d\n" seq.Pipeline.seq_cycles;
  Printf.printf "parallel cycles   : %d\n" par.par_cycles;
  Printf.printf "whole-program speedup: %.2fx\n"
    (float_of_int seq.Pipeline.seq_cycles /. float_of_int par.par_cycles);
  Printf.printf "output identical  : %b\n" (String.equal seq.seq_output par.par_output);
  Printf.printf
    "invocations %d, checkpoints %d, misspeculations %d (recovered %d iterations), fallbacks %d\n"
    stats.invocations stats.checkpoints stats.misspeculations
    stats.recovered_iterations fallbacks;
  Printf.printf "private bytes: %s read, %s written\n"
    (Privateer_support.Table.fbytes stats.private_bytes_read)
    (Privateer_support.Table.fbytes stats.private_bytes_written);
  let b = Privateer_runtime.Stats.breakdown stats in
  Printf.printf
    "overhead breakdown: useful %.1f%%, priv-read %.1f%%, priv-write %.1f%%, checkpoint %.1f%%, spawn/join %.1f%%\n"
    b.useful b.private_read b.private_write b.checkpoint b.spawn_join

let run_cmd =
  let run wl bindings input scale inject json =
    let scale = checked_scale wl scale in
    let program = Workload.program wl in
    let cfg = config ~inject bindings in
    let tr, profiler =
      Pipeline.compile ~setup:(Workload.setup ~scale wl Train) ~config:cfg program
    in
    let seq =
      Pipeline.run_sequential ~setup:(Workload.setup ~scale wl input) program
    in
    let par =
      Pipeline.run_parallel ~setup:(Workload.setup ~scale wl input) ~config:cfg tr
    in
    if json then
      print_endline
        (Privateer_support.Json.to_string
           (json_report ~config:cfg
              ~profile_ns:(Privateer_profile.Profiler.wall_ns profiler)
              ~seq ~par ~fallbacks:par.fallbacks))
    else report_run ~seq ~par ~fallbacks:par.fallbacks
  in
  Cmd.v (Cmd.info "run" ~doc:"Profile, privatize and run a workload in parallel")
    Term.(const run $ wl_arg $ bindings_term $ input_arg $ scale_arg $ inject_arg
          $ json_arg)

let compare_cmd =
  let run wl bindings scale =
    let scale = checked_scale wl scale in
    let program = Workload.program wl in
    let cfg = config bindings in
    let profiler, _ =
      Pipeline.profile ~setup:(Workload.setup ~scale wl Train) ~config:cfg program
    in
    let tr, _ =
      Pipeline.compile ~setup:(Workload.setup ~scale wl Train) ~config:cfg program
    in
    let seq =
      Pipeline.run_sequential ~setup:(Workload.setup ~scale wl Ref) program
    in
    let workers = cfg.RC.workers in
    let par =
      Pipeline.run_parallel ~setup:(Workload.setup ~scale wl Ref) ~config:cfg tr
    in
    let report = Privateer_baselines.Doall_only.select program profiler in
    let dst, _, _ =
      Privateer_baselines.Doall_only.run ~workers program report
        ~setup:(Workload.setup ~scale wl Ref)
    in
    Printf.printf "%-14s sequential: %d cycles\n" wl.name seq.seq_cycles;
    Printf.printf "  DOALL-only : %.2fx (%d provable loops)\n"
      (float_of_int seq.seq_cycles /. float_of_int dst.cycles)
      (List.length report.chosen);
    Printf.printf "  Privateer  : %.2fx\n"
      (float_of_int seq.seq_cycles /. float_of_int par.par_cycles)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Privateer vs the non-speculative DOALL-only baseline")
    Term.(const run $ wl_arg $ bindings_term $ scale_arg)

(* privateer file <src>: the full pipeline on any loader source — a
   bare path, file:<path>, workload:<name> or scenario:<spec> — via
   the same Sources interface the jobs manifest uses, so both report
   identical errors. *)
let file_cmd =
  let src_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SOURCE") in
  let run src bindings =
    let src = if String.contains src ':' then src else "file:" ^ src in
    let source =
      match Privateer_gen.Sources.parse src with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "privateer: %s\n" msg;
        exit 124
    in
    let program = source.Privateer_gen.Sources.src_fresh () in
    let train, runset =
      match source.Privateer_gen.Sources.src_workload with
      | Some wl -> (Workload.setup wl Train, Workload.setup wl Ref)
      | None -> (Pipeline.no_setup, Pipeline.no_setup)
    in
    let cfg = config bindings in
    let tr, _ = Pipeline.compile ~setup:train ~config:cfg program in
    let seq = Pipeline.run_sequential ~setup:runset program in
    let par = Pipeline.run_parallel ~setup:runset ~config:cfg tr in
    print_string par.par_output;
    report_run ~seq ~par ~fallbacks:par.fallbacks
  in
  Cmd.v
    (Cmd.info "file"
       ~doc:
         "Run the full pipeline on a source (a Cmini file path, file:<path>, \
          workload:<name> or scenario:<spec>)")
    Term.(const run $ src_arg $ bindings_term)

(* privateer gen <spec>: emit a generated scenario — the Cmini source
   on stdout, or with --meta a JSON object carrying the canonical
   spec, the expected classification and the planted-conflict shape
   (the oracle side of the corpus). *)
let gen_cmd =
  let spec_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC"
             ~doc:"Comma-separated knobs, e.g. seed=7,trip=96,misspec=0.1.")
  in
  let meta_arg =
    Arg.(value & flag
         & info [ "meta" ] ~doc:"Emit JSON metadata (oracle) instead of source.")
  in
  let run spec meta =
    match Privateer_gen.Scenario_gen.knobs_of_spec spec with
    | Error msg ->
      Printf.eprintf "privateer gen: %s\n" msg;
      exit 124
    | Ok knobs ->
      let sc = Privateer_gen.Scenario_gen.generate knobs in
      if not meta then print_string sc.sc_source
      else
        let open Privateer_support.Json in
        let e = sc.sc_expect in
        print_endline
          (to_string
             (Obj
                [ ("name", String sc.sc_name);
                  ( "spec",
                    String (Privateer_gen.Scenario_gen.spec_of_knobs sc.sc_knobs) );
                  ( "expect",
                    Obj
                      [ ( "private",
                          List (List.map (fun s -> String s) e.x_private) );
                        ("redux", List (List.map (fun s -> String s) e.x_redux));
                        ( "readonly",
                          List (List.map (fun s -> String s) e.x_readonly) );
                        ("hot_loops", Int e.x_hot_loops) ] );
                  ( "conflict_period",
                    match sc.sc_conflict_period with Some m -> Int m | None -> Null );
                  ( "conflict_offsets",
                    List (List.map (fun o -> Int o) sc.sc_conflict_offsets) ) ]))
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a synthetic Cmini scenario from a knob spec (seed, loops, trip, \
          heap, reuse, redux, misspec)")
    Term.(const run $ spec_arg $ meta_arg)

(* privateer serve <manifest>: run every job in the manifest through
   the job server — many concurrent speculative pipelines multiplexed
   over one shared domain pool — and emit the aggregate JSON report
   (throughput, latency percentiles, per-job results).  Exits 3 when
   any job failed, so smoke tests can assert success without parsing. *)
let serve_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST")
  in
  let run path bindings =
    let base = config bindings in
    let specs =
      try Privateer_server.Jobs_manifest.load ~base path
      with Failure msg ->
        Printf.eprintf "privateer serve: %s: %s\n" path msg;
        exit 125
    in
    let server = Privateer_server.Job_server.run_jobs ~config:base specs in
    print_endline
      (Privateer_support.Json.to_string (Privateer_server.Job_server.report server));
    let failed =
      List.exists
        (fun j ->
          match Privateer_server.Job_server.state server j with
          | Privateer_server.Job_server.Failed _ -> true
          | _ -> false)
        (Privateer_server.Job_server.jobs server)
    in
    if failed then exit 3
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a jobs manifest through the job server (concurrent speculative \
          pipelines over one shared domain pool) and emit the aggregate JSON \
          report")
    Term.(const run $ path $ bindings_term)

let () =
  let doc = "Privateer: speculative separation for privatization and reductions" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "privateer" ~doc)
          [ list_cmd; plan_cmd; dump_cmd; run_cmd; compare_cmd; gen_cmd; file_cmd;
            serve_cmd ]))
